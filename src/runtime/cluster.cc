#include "src/runtime/cluster.h"

#include "src/common/check.h"

namespace bmx {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      network_(options.seed),
      topology_(Topology::Make(options.topology, options.num_nodes, options.topology_degree,
                               options.seed)) {
  BMX_CHECK_GT(options.num_nodes, 0u);
  network_.set_batch_policy(options.batch);
  network_.set_crash_listener([this](NodeId id) { CrashNode(id); });
  nodes_.reserve(options.num_nodes);
  for (NodeId id = 0; id < options.num_nodes; ++id) {
    nodes_.push_back(
        std::make_unique<Node>(id, &network_, &directory_, &disk_, options.copyset_mode));
    nodes_.back()->gc().set_cleaner_mode(options.cleaner_mode);
  }
}

Node& Cluster::node(NodeId id) {
  BMX_CHECK_LT(id, nodes_.size());
  BMX_CHECK(nodes_[id] != nullptr) << "node " << id << " is crashed";
  return *nodes_[id];
}

BunchId Cluster::CreateBunch(NodeId creator) { return directory_.CreateBunch(creator); }

void Cluster::EnableHistoryRecording() {
  if (history_ != nullptr) {
    return;
  }
  history_ = std::make_unique<HistoryRecorder>(nodes_.size());
  network_.set_history_recorder(history_.get());
}

void Cluster::CrashNode(NodeId id) {
  BMX_CHECK_LT(id, nodes_.size());
  BMX_CHECK(nodes_[id] != nullptr) << "node " << id << " already crashed";
  network_.DisconnectNode(id);
  network_.obligations().DropNode(id);
  for (BunchId bunch : directory_.AllBunches()) {
    directory_.NoteUnmapped(bunch, id);
  }
  // The crash may have been signalled from inside one of the victim's own
  // message handlers (fault injection), with its frames still live below the
  // network's dispatch loop — destroying the Node here would be use-after-
  // free.  Park it; nodes_[id] == nullptr is the "crashed" marker either way.
  zombies_.push_back(std::move(nodes_[id]));
}

Node& Cluster::RestartNode(NodeId id) {
  BMX_CHECK_LT(id, nodes_.size());
  BMX_CHECK(nodes_[id] == nullptr) << "node " << id << " is not crashed";
  nodes_[id] = std::make_unique<Node>(id, &network_, &directory_, &disk_, options_.copyset_mode);
  nodes_[id]->gc().set_cleaner_mode(options_.cleaner_mode);
  return *nodes_[id];
}

}  // namespace bmx
