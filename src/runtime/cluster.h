// The whole simulated BMX deployment: a network, the shared segment
// directory (the BMX-server role), a shared stable store, and N nodes.

#ifndef SRC_RUNTIME_CLUSTER_H_
#define SRC_RUNTIME_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/mem/directory.h"
#include "src/net/network.h"
#include "src/runtime/node.h"
#include "src/rvm/disk.h"

namespace bmx {

struct ClusterOptions {
  size_t num_nodes = 2;
  CopySetMode copyset_mode = CopySetMode::kCentralized;
  CleanerMode cleaner_mode = CleanerMode::kImmediate;
  uint64_t seed = 1;
};

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options = {});

  size_t size() const { return nodes_.size(); }
  Node& node(NodeId id);
  Network& network() { return network_; }
  SegmentDirectory& directory() { return directory_; }
  Disk& disk() { return disk_; }

  BunchId CreateBunch(NodeId creator);

  // Drains all in-flight messages.
  void Pump() { network_.RunUntilIdle(); }

  // Simulates a node crash: volatile state discarded, in-flight traffic to
  // and from the node dropped.  Stable storage (the shared Disk) survives.
  void CrashNode(NodeId id);
  // Brings a crashed node back with empty volatile state; callers recover
  // segments through node.persistence().
  Node& RestartNode(NodeId id);

 private:
  ClusterOptions options_;
  Network network_;
  SegmentDirectory directory_;
  Disk disk_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_CLUSTER_H_
