// The whole simulated BMX deployment: a network, the shared segment
// directory (the BMX-server role), a shared stable store, and N nodes.

#ifndef SRC_RUNTIME_CLUSTER_H_
#define SRC_RUNTIME_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/common/perf_counters.h"
#include "src/common/types.h"
#include "src/mem/directory.h"
#include "src/net/batch.h"
#include "src/net/network.h"
#include "src/runtime/history.h"
#include "src/runtime/node.h"
#include "src/runtime/topology.h"
#include "src/rvm/disk.h"

namespace bmx {

struct ClusterOptions {
  size_t num_nodes = 2;
  CopySetMode copyset_mode = CopySetMode::kCentralized;
  CleanerMode cleaner_mode = CleanerMode::kImmediate;
  uint64_t seed = 1;
  // Workload-sharing topology (src/runtime/topology.h).  The protocol stays
  // any-to-any; scenario and soak drivers read cluster.topology() to decide
  // which peers share objects.  kFull reproduces the historical behavior.
  TopologyKind topology = TopologyKind::kFull;
  size_t topology_degree = 4;  // random-regular only
  // Batched control-message transport (src/net/batch.h); disabled by default
  // — the unbatched wire is the pinned-fingerprint baseline.
  BatchPolicy batch;
};

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options = {});

  size_t size() const { return nodes_.size(); }
  // Root seed this cluster was built with; seeded workload generators derive
  // their streams from it (DeriveStreamSeed) so runs reproduce from the seed.
  uint64_t seed() const { return options_.seed; }
  Node& node(NodeId id);
  Network& network() { return network_; }
  SegmentDirectory& directory() { return directory_; }
  Disk& disk() { return disk_; }
  // The sharing structure this cluster was built with (who shares objects
  // with whom); generated deterministically from the options at construction.
  const Topology& topology() const { return topology_; }

  // Attaches a client-history recorder to the network (idempotent).  Call
  // before driving any traffic so vector clocks cover the whole run; the
  // ConsistencyChecker consumes history() at quiescence.  Recording is pure
  // observation — traffic fingerprints are unchanged (see Network).
  void EnableHistoryRecording();
  // The attached recorder, or nullptr when recording was never enabled.
  HistoryRecorder* history() { return history_.get(); }
  // Hot-path counters (scan kernels, lookup tables, piggyback coalescing,
  // pool regions/steals).  Thread-local — each pool worker counts into its
  // own block and the TaskPool drains workers back into the submitting
  // thread when a parallel region ends, so the totals read here are
  // complete and independent of BMX_THREADS.  Benches reset them per run
  // and print them.
  PerfCounters& perf() { return GlobalPerfCounters(); }

  BunchId CreateBunch(NodeId creator);

  // Drains all in-flight messages, including timeout-driven retransmissions
  // of reliable payloads (the network's virtual clock advances as needed).
  void Pump() { network_.RunUntilIdle(); }

  // Advances the network's virtual clock, e.g. to make pending retransmission
  // timers due before the next Pump.
  void AdvanceTime(uint64_t ticks) { network_.AdvanceClock(ticks); }

  // Transient network partition between two live nodes (both directions).
  // Unreliable traffic between them is dropped; reliable traffic waits in the
  // sender's retransmission buffer and flows once the partition heals.
  void PartitionNodes(NodeId a, NodeId b) { network_.PartitionNodes(a, b); }
  void HealPartition(NodeId a, NodeId b) { network_.HealPartition(a, b); }

  // Simulates a node crash: volatile state is discarded, in-flight traffic
  // from the node is dropped, unreliable traffic to it is lost, and reliable
  // traffic to it is parked in each sender's retransmission buffer.  Stable
  // storage (the shared Disk) survives.  Also invoked by the network's crash
  // listener when a fault-injection site fires inside a message handler; in
  // that case the victim's frames may still be live below the network's
  // dispatch loop, so the Node object is parked in zombies_ instead of being
  // destroyed (deferred teardown — freed when the Cluster dies).
  void CrashNode(NodeId id);
  // True while the node has live volatile state (not crashed).
  bool IsAlive(NodeId id) const { return id < nodes_.size() && nodes_[id] != nullptr; }
  // Brings a crashed node back with empty volatile state; reliable traffic
  // parked while it was down is replayed to the new incarnation (FIFO per
  // sender, deduplicated).  Callers recover segments through
  // node.persistence().
  Node& RestartNode(NodeId id);

 private:
  ClusterOptions options_;
  Network network_;
  Topology topology_;
  SegmentDirectory directory_;
  Disk disk_;
  // Declared after network_: the network holds a raw pointer but never
  // touches it during destruction.
  std::unique_ptr<HistoryRecorder> history_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Crashed Node objects whose destruction is deferred (see CrashNode).
  std::vector<std::unique_ptr<Node>> zombies_;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_CLUSTER_H_
