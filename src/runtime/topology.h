// Parameterized N-node cluster topologies.
//
// The protocol layer is any-to-any — every node can message every node — so a
// topology here is a *workload-sharing structure*, not a routing constraint:
// scenario and soak drivers pick which peers a node shares objects with by
// walking the adjacency lists.  That is exactly how the paper's deployment
// scales (clients share through the segments they map, not through a fixed
// wiring), and it is what lets one SoakScenario exercise dense fan-out
// (full/star hubs) and sparse chains (rings, random k-regular expanders) with
// the same code.
//
// All generators are deterministic: RandomRegular draws from a dedicated
// stream of the given seed, so a (kind, n, degree, seed) tuple always names
// the same graph on every platform and thread count.

#ifndef SRC_RUNTIME_TOPOLOGY_H_
#define SRC_RUNTIME_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace bmx {

enum class TopologyKind : uint8_t {
  kFull,           // every pair adjacent (the historical 2-4 node behavior)
  kRing,           // node i shares with i-1 and i+1 (mod n)
  kStar,           // node 0 is the hub; spokes share only with it
  kRandomRegular,  // random circulant: k-regular, connected, seed-determined
};

const char* TopologyKindName(TopologyKind kind);
// Parses "full" / "ring" / "star" / "random-regular"; false on anything else.
bool ParseTopologyKind(const std::string& name, TopologyKind* out);

struct Topology {
  TopologyKind kind = TopologyKind::kFull;
  size_t num_nodes = 0;
  // adjacency[i] lists i's neighbors, sorted ascending, no self-loops; the
  // relation is symmetric.
  std::vector<std::vector<NodeId>> adjacency;

  // degree is consulted only by kRandomRegular (clamped to [2, n-1] and
  // rounded to even below n-1); seed only by kRandomRegular.
  static Topology Make(TopologyKind kind, size_t num_nodes, size_t degree = 4,
                       uint64_t seed = 1);

  const std::vector<NodeId>& NeighborsOf(NodeId node) const;
  // Some neighbor of `node`, biased by `salt` for cheap deterministic
  // spreading; the node itself for the degenerate 1-node topology.
  NodeId NeighborOf(NodeId node, uint64_t salt) const;
  size_t EdgeCount() const;
  bool Connected() const;
  std::string Describe() const;  // e.g. "ring(n=16, edges=16)"
};

}  // namespace bmx

#endif  // SRC_RUNTIME_TOPOLOGY_H_
