#include "src/runtime/explorer.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/check.h"
#include "src/common/task_pool.h"
#include "src/runtime/consistency_checker.h"
#include "src/runtime/liveness.h"
#include "src/runtime/oracle.h"

namespace bmx {

RunResult Explorer::RunOnce(const ExplorerScenario& scenario, uint64_t walk_seed,
                            const Trace* replay, Trace* recorded, uint64_t stride) {
  RunResult result;
  std::unique_ptr<Cluster> cluster = scenario.make(options_.root_seed);
  BMX_CHECK(cluster != nullptr) << "scenario " << scenario.name << " produced no cluster";
  if (options_.check_consistency) {
    cluster->EnableHistoryRecording();
  }
  Network& net = cluster->network();
  if (replay == nullptr) {
    switch (options_.schedule) {
      case ScheduleKind::kFifo:
        net.set_scheduler(std::make_unique<FifoScheduler>());
        break;
      case ScheduleKind::kRandomWalk:
        net.set_scheduler(
            std::make_unique<RandomWalkScheduler>(walk_seed, options_.deviation_rate));
        break;
      case ScheduleKind::kDelayBounded:
        net.set_scheduler(
            std::make_unique<DelayBoundedScheduler>(walk_seed, options_.delay_bound));
        break;
    }
    net.StartRecording();
  } else {
    net.ReplayFrom(*replay);
  }

  InvariantOracle oracle(cluster.get());
  std::unique_ptr<LivenessOracle> liveness;
  if (options_.check_liveness) {
    liveness = std::make_unique<LivenessOracle>(cluster.get());
  }
  bool mid_run_violation = false;
  net.set_delivery_observer([&](const Message&) {
    result.deliveries++;
    if (liveness != nullptr && !mid_run_violation) {
      std::vector<std::string> stalls = liveness->OnDelivery();
      if (!stalls.empty()) {
        mid_run_violation = true;
        result.first_violation_index = net.decisions().next_index();
        for (std::string& v : stalls) {
          result.violations.push_back("mid-run liveness: " + std::move(v));
        }
        return;
      }
    }
    if (mid_run_violation || stride == 0 || result.deliveries % stride != 0) {
      return;
    }
    std::vector<std::string> found = oracle.CheckStable();
    if (!found.empty()) {
      mid_run_violation = true;
      // Everything decided so far has index < next_index(); later decisions
      // cannot have contributed to this violation.
      result.first_violation_index = net.decisions().next_index();
      for (std::string& v : found) {
        result.violations.push_back("mid-run: " + std::move(v));
      }
    }
  });

  scenario.run(*cluster);
  cluster->Pump();
  for (std::string& v : oracle.Check()) {
    result.violations.push_back(std::move(v));
  }
  if (options_.check_consistency && cluster->history() != nullptr) {
    ConsistencyChecker checker(cluster->history(), &cluster->directory());
    for (std::string& v : checker.Check()) {
      result.violations.push_back("consistency: " + std::move(v));
    }
  }
  if (liveness != nullptr) {
    for (std::string& v : liveness->CheckAtQuiescence()) {
      result.violations.push_back("liveness: " + std::move(v));
    }
  }
  result.violated = !result.violations.empty();
  if (!mid_run_violation) {
    result.first_violation_index = net.decisions().next_index();
  }
  result.fingerprint = net.stats().Fingerprint();
  if (recorded != nullptr && replay == nullptr) {
    *recorded = net.TakeRecordedTrace();
    recorded->scenario = scenario.name;
    recorded->walk_seed = walk_seed;
  }
  net.set_delivery_observer(nullptr);
  return result;
}

ExplorationResult Explorer::Explore(const ExplorerScenario& scenario) {
  ExplorationResult out;
  auto start = std::chrono::steady_clock::now();
  size_t walks = options_.schedule == ScheduleKind::kFifo
                     ? 1  // FIFO has exactly one schedule; extra walks repeat it
                     : options_.num_walks;
  TaskPool& pool = TaskPool::Global();
  if (pool.threads() > 1 && !TaskPool::InParallelRegion() && walks > 1) {
    return ExploreParallel(scenario, walks, start);
  }
  for (size_t walk = 0; walk < walks; ++walk) {
    if (walk > 0 && options_.budget_seconds > 0) {
      double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      if (elapsed >= options_.budget_seconds) {
        break;
      }
    }
    uint64_t walk_seed = DeriveStreamSeed(options_.root_seed + walk, RngStream::kScheduler);
    Trace recorded;
    RunResult run =
        RunOnce(scenario, walk_seed, nullptr, &recorded, options_.oracle_stride);
    out.runs++;
    out.total_deliveries += run.deliveries;
    out.fingerprint = run.fingerprint;
    if (!run.violated) {
      continue;
    }
    out.violation_found = true;
    out.violating_walk_seed = walk_seed;
    out.violations = run.violations;
    out.trace = recorded;
    size_t shrink_runs = 0;
    out.shrunk = Shrink(scenario, recorded, &shrink_runs);
    out.runs += shrink_runs;
    if (!options_.trace_dir.empty()) {
      out.trace_path = options_.trace_dir + "/" + scenario.name + "-violation.trace";
      out.shrunk.WriteFile(out.trace_path);
    }
    break;
  }
  return out;
}

ExplorationResult Explorer::ExploreParallel(
    const ExplorerScenario& scenario, size_t walks,
    std::chrono::steady_clock::time_point start) {
  // Walk fleet: batches of `threads` independent walks, each building and
  // driving its own cluster confined to one pool thread (the per-thread
  // fault injector and perf counters make that confinement sound; GC and
  // oracle task-pool calls inside a walk run inline, being nested).  Batch
  // results fold in walk order and the fold stops at the first violating
  // walk, so runs, total_deliveries, fingerprint, and the violating seed all
  // match the serial loop bit for bit — walks that ran past the first
  // violation are discarded unobserved.  Only the wall-clock budget is
  // coarser: it gates batches, not individual walks (and at least one batch
  // always runs, mirroring the serial at-least-one-walk guarantee).
  ExplorationResult out;
  struct WalkOutcome {
    RunResult run;
    Trace recorded;
  };
  for (size_t batch_start = 0; batch_start < walks;) {
    if (batch_start > 0 && options_.budget_seconds > 0) {
      double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      if (elapsed >= options_.budget_seconds) {
        break;
      }
    }
    size_t batch = std::min(TaskPool::Global().threads(), walks - batch_start);
    std::vector<WalkOutcome> outcomes =
        TaskPool::Global().ParallelMap<WalkOutcome>(batch, [&](size_t i) {
          uint64_t walk_seed = DeriveStreamSeed(options_.root_seed + batch_start + i,
                                                RngStream::kScheduler);
          WalkOutcome outcome;
          outcome.run =
              RunOnce(scenario, walk_seed, nullptr, &outcome.recorded, options_.oracle_stride);
          return outcome;
        });
    for (size_t i = 0; i < outcomes.size(); ++i) {
      RunResult& run = outcomes[i].run;
      out.runs++;
      out.total_deliveries += run.deliveries;
      out.fingerprint = run.fingerprint;
      if (!run.violated) {
        continue;
      }
      out.violation_found = true;
      out.violating_walk_seed = DeriveStreamSeed(options_.root_seed + batch_start + i,
                                                 RngStream::kScheduler);
      out.violations = run.violations;
      out.trace = outcomes[i].recorded;
      size_t shrink_runs = 0;
      out.shrunk = Shrink(scenario, outcomes[i].recorded, &shrink_runs);
      out.runs += shrink_runs;
      if (!options_.trace_dir.empty()) {
        out.trace_path = options_.trace_dir + "/" + scenario.name + "-violation.trace";
        out.shrunk.WriteFile(out.trace_path);
      }
      return out;
    }
    batch_start += batch;
  }
  return out;
}

RunResult Explorer::Replay(const ExplorerScenario& scenario, const Trace& trace) {
  return RunOnce(scenario, trace.walk_seed, &trace, nullptr, options_.oracle_stride);
}

Trace Explorer::Shrink(const ExplorerScenario& scenario, const Trace& trace,
                       size_t* runs_used) {
  size_t runs = 0;
  Trace best = trace;
  // Shrinking needs the earliest violation position, so every replay here
  // checks the stable core at stride 1 regardless of the configured stride.
  RunResult base = RunOnce(scenario, 0, &best, nullptr, 1);
  runs++;
  if (base.violated) {
    // Tail truncation: decisions at or past the first-violation index were
    // resolved after the violation existed and cannot have caused it.
    Trace truncated = best;
    truncated.decisions.clear();
    for (const Decision& d : best.decisions) {
      if (d.index < base.first_violation_index) {
        truncated.decisions.push_back(d);
      }
    }
    truncated.total_decisions = base.first_violation_index;
    if (truncated.decisions.size() < best.decisions.size()) {
      RunResult check = RunOnce(scenario, 0, &truncated, nullptr, 1);
      runs++;
      if (check.violated) {
        best = std::move(truncated);
      }
    } else {
      best.total_decisions = truncated.total_decisions;
    }
    // Greedy single-decision removal, newest first (late deviations are the
    // most likely to be incidental), repeated to fixpoint.
    bool changed = true;
    while (changed && runs < options_.max_shrink_runs) {
      changed = false;
      for (size_t i = best.decisions.size(); i-- > 0;) {
        if (runs >= options_.max_shrink_runs) {
          break;
        }
        Trace candidate = best;
        candidate.decisions.erase(candidate.decisions.begin() +
                                  static_cast<std::ptrdiff_t>(i));
        RunResult attempt = RunOnce(scenario, 0, &candidate, nullptr, 1);
        runs++;
        if (attempt.violated) {
          best = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  if (runs_used != nullptr) {
    *runs_used = runs;
  }
  return best;
}

}  // namespace bmx
