// Entry-consistency verdicts over recorded client histories.
//
// The checker takes the per-node histories a HistoryRecorder collected (reads
// with the values they returned, writes, acquire/release brackets, GC flip
// observations — each stamped with a vector clock derived from message
// causality) and decides whether the run satisfied the memory model the paper
// promises the client (§2.2, entry consistency; §5, GC transparency):
//
//   A. Bracket discipline — every read/write happens inside an acquire/
//      release section on its object, except accesses by the object's
//      creator, which implicitly holds the write token from allocation
//      until the first transfer (how fig. 1 writes O3 without an acquire).
//      A release without an open section is a violation.
//   B. Conflicting critical sections are ordered — two sections on the same
//      object from different nodes, at least one containing a write, must be
//      vector-clock ordered (release-before-acquire one way or the other).
//      This is the client-visible face of "writes before a release are
//      visible after the matching acquire": a reader whose invalidation was
//      skipped re-enters its section with no causal edge from the writer and
//      shows up here as a concurrent conflicting pair.
//   C. Per-object write serialization — any two writes to the same object
//      from different nodes are vector-clock ordered (MRSW: the write token
//      is exclusive, so concurrent cross-node writes cannot exist).
//   D. Read values — a read returns the value of the causally latest write
//      to its (object, slot) among writes that happen-before it.  Reference
//      values are canonicalized through the directory (address → oid), so a
//      GC move between write and read is not a mismatch.
//   E. Intra-section stability — within one critical section, re-reading a
//      slot with no intervening local write returns the same canonical
//      value; a GC flip mid-section must be value-transparent.
//   F. Flip sanity — a recorded GC flip never re-binds an address that the
//      directory maps to a different object.
//
// The checker is offline and read-only: run it at quiescence (the Explorer
// does, when ExplorerOptions.check_consistency is set) and it returns
// human-readable violation strings, empty when the contract held.

#ifndef SRC_RUNTIME_CONSISTENCY_CHECKER_H_
#define SRC_RUNTIME_CONSISTENCY_CHECKER_H_

#include <string>
#include <vector>

#include "src/runtime/history.h"

namespace bmx {

class SegmentDirectory;

class ConsistencyChecker {
 public:
  // `directory` canonicalizes reference values across GC moves; nullptr is
  // allowed (unit tests) and falls back to raw address comparison.
  ConsistencyChecker(const HistoryRecorder* history, const SegmentDirectory* directory);

  // Runs every check over the recorded histories.  Deterministic: violation
  // order depends only on the histories.  Bumps the consistency perf
  // counters (checks run, violations found).
  std::vector<std::string> Check();

 private:
  const HistoryRecorder* history_;
  const SegmentDirectory* directory_;
};

}  // namespace bmx

#endif  // SRC_RUNTIME_CONSISTENCY_CHECKER_H_
