#include "src/runtime/consistency_checker.h"

#include <cstddef>
#include <map>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/perf_counters.h"
#include "src/mem/directory.h"

namespace bmx {

namespace {

// One read or write attributed to a critical section.
struct Access {
  bool is_write = false;
  uint32_t slot = 0;
  uint64_t value = 0;
  bool is_ref = false;
  VectorClock vc;
};

// One critical section on one object at one node, [acq_vc, rel_vc].  Creator
// accesses outside any bracket become degenerate sections (acq == rel == the
// access), which lets check B order them against remote sections.
struct Section {
  NodeId node = kInvalidNode;
  Oid oid = kNullOid;
  bool write_mode = false;
  bool implicit = false;  // creator access with no explicit bracket
  VectorClock acq_vc;
  VectorClock rel_vc;  // last-access clock when the section was never released
  std::vector<Access> accesses;

  bool HasWrite() const {
    for (const Access& a : accesses) {
      if (a.is_write) {
        return true;
      }
    }
    return false;
  }
};

std::string Where(NodeId node, Oid oid) {
  std::ostringstream os;
  os << "node " << node << " oid " << oid;
  return os.str();
}

}  // namespace

ConsistencyChecker::ConsistencyChecker(const HistoryRecorder* history,
                                       const SegmentDirectory* directory)
    : history_(history), directory_(directory) {
  BMX_CHECK(history_ != nullptr);
}

std::vector<std::string> ConsistencyChecker::Check() {
  std::vector<std::string> violations;
  GlobalPerfCounters().consistency_checks_run++;

  // Reference values compare by object identity, not raw address: the
  // directory keeps every address an object ever had mapped to its oid, so a
  // GC move between write and read canonicalizes to the same value.  Bit 63
  // tags a resolved identity (segment-based addresses never reach it).
  auto canonical = [this](uint64_t value, bool is_ref) -> uint64_t {
    if (!is_ref || value == kNullAddr || directory_ == nullptr) {
      return value;
    }
    Oid oid = directory_->OidAtAddress(static_cast<Gaddr>(value));
    return oid == kNullOid ? value : ((uint64_t{1} << 63) | oid);
  };

  // --- Pass 1: per-node program-order walk.  Builds the section list (for
  // --- checks B/C/D), enforcing bracket discipline (A) and intra-section
  // --- stability (E) along the way.
  std::map<Oid, NodeId> creator_of;
  for (NodeId n = 0; n < history_->num_nodes(); ++n) {
    for (const HistoryEvent& ev : history_->HistoryOf(n)) {
      if (ev.op == HistoryOp::kAlloc) {
        creator_of.emplace(ev.oid, n);
      }
    }
  }

  std::map<Oid, std::vector<Section>> sections;
  for (NodeId n = 0; n < history_->num_nodes(); ++n) {
    std::map<Oid, Section> open;
    // (oid, slot) -> canonical value last seen in the current open section.
    std::map<std::pair<Oid, uint32_t>, uint64_t> section_view;
    for (const HistoryEvent& ev : history_->HistoryOf(n)) {
      switch (ev.op) {
        case HistoryOp::kAlloc:
        case HistoryOp::kGcFlip:
          break;
        case HistoryOp::kAcquireRead:
        case HistoryOp::kAcquireWrite: {
          auto it = open.find(ev.oid);
          if (it != open.end()) {
            violations.push_back("bracket: nested acquire with a section already open (" +
                                 Where(n, ev.oid) + ")");
            it->second.rel_vc = ev.vc;
            sections[ev.oid].push_back(std::move(it->second));
            open.erase(it);
          }
          Section s;
          s.node = n;
          s.oid = ev.oid;
          s.write_mode = ev.op == HistoryOp::kAcquireWrite;
          s.acq_vc = ev.vc;
          s.rel_vc = ev.vc;
          open.emplace(ev.oid, std::move(s));
          break;
        }
        case HistoryOp::kRelease: {
          auto it = open.find(ev.oid);
          if (it == open.end()) {
            violations.push_back("bracket: release without an open section (" +
                                 Where(n, ev.oid) + ")");
            break;
          }
          it->second.rel_vc = ev.vc;
          sections[ev.oid].push_back(std::move(it->second));
          open.erase(it);
          // The section's view dies with it: the next section re-reads under
          // a fresh token and may legitimately see newer values.
          for (auto view_it = section_view.begin(); view_it != section_view.end();) {
            if (view_it->first.first == ev.oid) {
              view_it = section_view.erase(view_it);
            } else {
              ++view_it;
            }
          }
          break;
        }
        case HistoryOp::kRead:
        case HistoryOp::kWrite: {
          bool is_write = ev.op == HistoryOp::kWrite;
          Access access;
          access.is_write = is_write;
          access.slot = ev.slot;
          access.value = ev.value;
          access.is_ref = ev.is_ref;
          access.vc = ev.vc;
          auto it = open.find(ev.oid);
          if (it != open.end()) {
            Section& s = it->second;
            if (is_write && !s.write_mode) {
              violations.push_back("bracket: write inside a read-mode section (" +
                                   Where(n, ev.oid) + " slot " + std::to_string(ev.slot) + ")");
            }
            // E: a re-read with no intervening write in this section must
            // return the same canonical value (GC flips are transparent).
            uint64_t canon = canonical(ev.value, ev.is_ref);
            auto key = std::make_pair(ev.oid, ev.slot);
            auto view = section_view.find(key);
            if (!is_write && view != section_view.end() && view->second != canon) {
              violations.push_back("stability: re-read changed value inside one section (" +
                                   Where(n, ev.oid) + " slot " + std::to_string(ev.slot) + ")");
            }
            section_view[key] = canon;
            s.rel_vc = ev.vc;  // provisional close for never-released sections
            s.accesses.push_back(std::move(access));
            break;
          }
          auto creator = creator_of.find(ev.oid);
          if (creator == creator_of.end() || creator->second != n) {
            violations.push_back("bracket: access outside any critical section (" +
                                 Where(n, ev.oid) + " slot " + std::to_string(ev.slot) + ")");
            break;
          }
          // Creator allowance: a degenerate [vc, vc] section so check B can
          // still order it against remote sections.
          Section s;
          s.node = n;
          s.oid = ev.oid;
          s.write_mode = is_write;
          s.implicit = true;
          s.acq_vc = ev.vc;
          s.rel_vc = ev.vc;
          s.accesses.push_back(std::move(access));
          sections[ev.oid].push_back(std::move(s));
          break;
        }
      }
    }
    for (auto& [oid, s] : open) {
      sections[oid].push_back(std::move(s));  // unreleased: closed at last access
    }
  }

  // --- B: conflicting cross-node sections must be ordered. ---
  for (const auto& [oid, list] : sections) {
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        const Section& a = list[i];
        const Section& b = list[j];
        if (a.node == b.node) {
          continue;  // program order
        }
        if (!a.HasWrite() && !b.HasWrite()) {
          continue;  // concurrent readers are the MRSW point
        }
        if (!VcLeq(a.rel_vc, b.acq_vc) && !VcLeq(b.rel_vc, a.acq_vc)) {
          violations.push_back(
              "conflict: concurrent critical sections with a writer on oid " +
              std::to_string(oid) + " (node " + std::to_string(a.node) + " vs node " +
              std::to_string(b.node) + ")");
        }
      }
    }
  }

  // --- C and D over the flattened access lists. ---
  struct TaggedAccess {
    NodeId node;
    Access access;
  };
  std::map<Oid, std::vector<TaggedAccess>> accesses;
  for (const auto& [oid, list] : sections) {
    for (const Section& s : list) {
      for (const Access& a : s.accesses) {
        accesses[oid].push_back({s.node, a});
      }
    }
  }
  for (const auto& [oid, list] : accesses) {
    // C: cross-node writes to one object are totally ordered.
    for (size_t i = 0; i < list.size(); ++i) {
      if (!list[i].access.is_write) {
        continue;
      }
      for (size_t j = i + 1; j < list.size(); ++j) {
        if (!list[j].access.is_write || list[i].node == list[j].node) {
          continue;
        }
        if (VcConcurrent(list[i].access.vc, list[j].access.vc)) {
          violations.push_back("serialization: concurrent cross-node writes to oid " +
                               std::to_string(oid) + " (node " + std::to_string(list[i].node) +
                               " vs node " + std::to_string(list[j].node) + ")");
        }
      }
    }
    // D: each read returns the causally latest happens-before write.  When
    // the maximal candidates are concurrent among themselves, C has already
    // complained; skip rather than double-report.
    for (const TaggedAccess& r : list) {
      if (r.access.is_write) {
        continue;
      }
      std::vector<const TaggedAccess*> candidates;
      for (const TaggedAccess& w : list) {
        if (w.access.is_write && w.access.slot == r.access.slot &&
            VcLeq(w.access.vc, r.access.vc)) {
          candidates.push_back(&w);
        }
      }
      // The latest candidate must dominate every other; if the maximal
      // candidates are mutually concurrent there is no unique expected value.
      const TaggedAccess* latest = nullptr;
      for (const TaggedAccess* w : candidates) {
        bool dominates = true;
        for (const TaggedAccess* other : candidates) {
          if (other != w && !VcLeq(other->access.vc, w->access.vc)) {
            dominates = false;
            break;
          }
        }
        if (dominates) {
          latest = w;
          break;
        }
      }
      if (latest == nullptr) {
        continue;  // uninitialized read, or concurrent writes (C reported)
      }
      uint64_t want = canonical(latest->access.value, latest->access.is_ref);
      uint64_t got = canonical(r.access.value, r.access.is_ref);
      if (want != got) {
        violations.push_back(
            "stale-read: node " + std::to_string(r.node) + " read oid " + std::to_string(oid) +
            " slot " + std::to_string(r.access.slot) + " = " + std::to_string(r.access.value) +
            " but the latest visible write (node " + std::to_string(latest->node) + ") stored " +
            std::to_string(latest->access.value));
      }
    }
  }

  // --- F: recorded flips never re-bind an address to a different object. ---
  if (directory_ != nullptr) {
    for (NodeId n = 0; n < history_->num_nodes(); ++n) {
      for (const HistoryEvent& ev : history_->HistoryOf(n)) {
        if (ev.op != HistoryOp::kGcFlip) {
          continue;
        }
        for (Gaddr addr : {ev.old_addr, ev.new_addr}) {
          Oid mapped = directory_->OidAtAddress(addr);
          if (mapped != kNullOid && mapped != ev.oid) {
            violations.push_back("flip: address " + std::to_string(addr) +
                                 " flipped under oid " + std::to_string(ev.oid) +
                                 " but the directory maps it to oid " + std::to_string(mapped));
          }
        }
      }
    }
  }

  GlobalPerfCounters().consistency_violations += violations.size();
  return violations;
}

}  // namespace bmx
