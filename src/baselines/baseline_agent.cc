#include "src/baselines/baseline_agent.h"

#include "src/common/check.h"

namespace bmx {

BaselineAgent::BaselineAgent(Node* node) : node_(node) {
  BMX_CHECK(node_ != nullptr);
  node_->set_extra_handler(this);
}

void BaselineAgent::HandleMessage(const Message& msg) {
  switch (msg.payload->kind()) {
    case MsgKind::kStrongUpdate:
      HandleStrongUpdate(msg);
      return;
    case MsgKind::kStrongUpdateAck:
      BMX_CHECK_GT(strong_acks_pending_, 0u);
      strong_acks_pending_--;
      return;
    case MsgKind::kStwStop:
      HandleStwStop(msg);
      return;
    case MsgKind::kStwRootsReply:
      stw_done_received_++;
      return;
    case MsgKind::kStwResume:
      stopped_ = false;
      return;
    case MsgKind::kRcIncrement:
      HandleRcDelta(msg, +1);
      return;
    case MsgKind::kRcDecrement:
      HandleRcDelta(msg, -1);
      return;
    default:
      BMX_CHECK(false) << "BaselineAgent got unexpected kind "
                       << MsgKindName(msg.payload->kind());
  }
}

void BaselineAgent::HandleStrongUpdate(const Message& msg) {
  const auto& update = static_cast<const StrongUpdatePayload&>(*msg.payload);
  // Eager application — in a real strong-consistency system the mutators on
  // this node stall behind this; the message + ack are the cost we count.
  node_->dsm().ApplyAddressUpdates(update.updates, msg.src);
  auto ack = std::make_shared<StrongUpdateAckPayload>();
  ack->round = update.round;
  node_->network()->Send(node_->id(), msg.src, std::move(ack));
}

void BaselineAgent::HandleStwStop(const Message& msg) {
  const auto& stop = static_cast<const StwStopPayload&>(*msg.payload);
  stopped_ = true;
  uint64_t before = node_->gc().stats().objects_reclaimed;
  node_->gc().CollectBunch(stop.bunch);
  auto done = std::make_shared<StwDonePayload>();
  done->round = stop.round;
  done->objects_reclaimed = node_->gc().stats().objects_reclaimed - before;
  node_->network()->Send(node_->id(), msg.src, std::move(done));
}

void BaselineAgent::HandleRcDelta(const Message& msg, int64_t delta) {
  Gaddr addr = msg.payload->kind() == MsgKind::kRcIncrement
                   ? static_cast<const RcIncrementPayload&>(*msg.payload).target_addr
                   : static_cast<const RcDecrementPayload&>(*msg.payload).target_addr;
  Gaddr resolved = node_->dsm().ResolveAddr(addr);
  Oid oid = kNullOid;
  if (node_->store().HasObjectAt(resolved)) {
    oid = node_->store().HeaderOf(resolved)->oid;
  }
  int64_t& count = rc_.counts[oid];
  count += delta;
  if (count == 0 && delta < 0) {
    // Count dropped to zero: the reference-counting collector reclaims the
    // object.  With a lost increment or duplicated decrement this can be
    // premature — the hazard §6.1's idempotent tables avoid.
    rc_.reclaimed++;
    rc_.counts.erase(oid);
  } else if (count < 0) {
    rc_.negative_counts++;
  }
}

}  // namespace bmx
