// Strong-consistency copying collector — the comparator the paper argues
// against (§9, Le Sergent & Berthomieu style): objects are kept strongly
// consistent, so the collector must acquire the write token for every live
// object it relocates (invalidating all read copies), and must propagate new
// locations eagerly with dedicated messages that applications wait behind.
//
// Liveness decisions are identical to the BMX collector (same trace); only
// the consistency strategy differs, which is exactly the variable the
// benchmarks isolate.

#ifndef SRC_BASELINES_STRONG_COPY_H_
#define SRC_BASELINES_STRONG_COPY_H_

#include <vector>

#include "src/baselines/baseline_agent.h"
#include "src/runtime/cluster.h"

namespace bmx {

struct StrongCopyStats {
  uint64_t collections = 0;
  uint64_t objects_copied = 0;
  uint64_t tokens_acquired = 0;
  uint64_t update_messages = 0;
  uint64_t update_rounds = 0;
};

class StrongCopyCollector {
 public:
  // `agents` must hold one BaselineAgent per cluster node, indexed by id.
  StrongCopyCollector(Cluster* cluster, std::vector<BaselineAgent*> agents);

  // Collects the replica of `bunch` at `node`, acquiring the write token for
  // every live object and eagerly broadcasting every relocation.
  void Collect(NodeId node, BunchId bunch);

  const StrongCopyStats& stats() const { return stats_; }

 private:
  Cluster* cluster_;
  std::vector<BaselineAgent*> agents_;
  uint64_t next_round_ = 1;
  StrongCopyStats stats_;
};

}  // namespace bmx

#endif  // SRC_BASELINES_STRONG_COPY_H_
