#include "src/baselines/refcount.h"

#include "src/common/check.h"

namespace bmx {

RefCountGc::RefCountGc(Cluster* cluster) : cluster_(cluster) { BMX_CHECK(cluster_ != nullptr); }

void RefCountGc::SendDelta(NodeId from, Gaddr target, bool increment) {
  // The count lives with the target's segment creator (its "home").
  NodeId home = cluster_->directory().SegmentCreator(SegmentOf(target));
  if (home == from) {
    // Local bookkeeping without a message (same-node count).
    Message fake;
    fake.src = from;
    fake.dst = from;
    if (increment) {
      auto payload = std::make_shared<RcIncrementPayload>();
      payload->target_addr = target;
      fake.payload = payload;
    } else {
      auto payload = std::make_shared<RcDecrementPayload>();
      payload->target_addr = target;
      fake.payload = payload;
    }
    cluster_->node(from).HandleMessage(fake);
  } else if (increment) {
    auto payload = std::make_shared<RcIncrementPayload>();
    payload->target_addr = target;
    cluster_->network().Send(from, home, std::move(payload));
  } else {
    auto payload = std::make_shared<RcDecrementPayload>();
    payload->target_addr = target;
    cluster_->network().Send(from, home, std::move(payload));
  }
  if (increment) {
    stats_.increments_sent++;
  } else {
    stats_.decrements_sent++;
  }
}

void RefCountGc::WriteRef(Mutator* mutator, Gaddr obj, size_t slot, Gaddr target) {
  BMX_CHECK(mutator != nullptr);
  NodeId node = mutator->node_id();
  Node& n = cluster_->node(node);
  Gaddr resolved = n.dsm().ResolveAddr(obj);
  BunchId src_bunch = cluster_->directory().BunchOfSegment(SegmentOf(resolved));

  // Decrement for an overwritten inter-bunch reference (deletion barrier).
  if (n.store().SlotIsRef(resolved, slot)) {
    Gaddr old_target = n.store().ReadSlot(resolved, slot);
    if (old_target != kNullAddr) {
      Gaddr old_resolved = n.dsm().ResolveAddr(old_target);
      if (cluster_->directory().BunchOfSegment(SegmentOf(old_resolved)) != src_bunch) {
        SendDelta(node, old_resolved, /*increment=*/false);
      }
    }
  }

  mutator->WriteRef(obj, slot, target);

  if (target != kNullAddr) {
    Gaddr target_resolved = n.dsm().ResolveAddr(target);
    if (cluster_->directory().BunchOfSegment(SegmentOf(target_resolved)) != src_bunch) {
      SendDelta(node, target_resolved, /*increment=*/true);
    }
  }
}

}  // namespace bmx
