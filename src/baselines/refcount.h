// Distributed reference counting for inter-bunch references, after Bevan
// (§9/[5]) — the acyclic-garbage comparator for the stub/scion mechanism.
//
// The write barrier's events are mirrored into increment/decrement messages
// to the node holding the target object.  Two structural weaknesses, both of
// which §6.1 calls out and the tests demonstrate:
//   * inc/dec messages are not idempotent: a lost decrement leaks forever, a
//     lost increment (or duplicated decrement) frees a live object;
//   * counts never reach zero around a cycle, so distributed cycles leak.

#ifndef SRC_BASELINES_REFCOUNT_H_
#define SRC_BASELINES_REFCOUNT_H_

#include "src/baselines/baseline_agent.h"
#include "src/runtime/cluster.h"
#include "src/runtime/mutator.h"

namespace bmx {

struct RefCountGcStats {
  uint64_t increments_sent = 0;
  uint64_t decrements_sent = 0;
};

// Driver that wraps a mutator's reference writes with the RC protocol.
class RefCountGc {
 public:
  explicit RefCountGc(Cluster* cluster);

  // Performs mutator.WriteRef(obj, slot, target) and sends the matching
  // increment for the new target and decrement for any overwritten one.
  void WriteRef(Mutator* mutator, Gaddr obj, size_t slot, Gaddr target);

  const RefCountGcStats& stats() const { return stats_; }

 private:
  void SendDelta(NodeId from, Gaddr target, bool increment);

  Cluster* cluster_;
  RefCountGcStats stats_;
};

}  // namespace bmx

#endif  // SRC_BASELINES_REFCOUNT_H_
