// Stop-the-world distributed collection — the scalability strawman (§9, Le
// Sergent: "the entire address space is collected at the same time, which is
// not scalable").  A coordinator stops every node mapping the bunch, each
// stopped node collects its replica, and only then does anyone resume.  The
// mutator-visible pause spans the whole distributed operation, versus the
// BMX collector's per-node flip.

#ifndef SRC_BASELINES_STOP_THE_WORLD_H_
#define SRC_BASELINES_STOP_THE_WORLD_H_

#include <vector>

#include "src/baselines/baseline_agent.h"
#include "src/runtime/cluster.h"

namespace bmx {

struct StopTheWorldStats {
  uint64_t collections = 0;
  uint64_t barrier_messages = 0;  // stop + done + resume
  uint64_t nodes_stopped = 0;
};

class StopTheWorldCollector {
 public:
  StopTheWorldCollector(Cluster* cluster, std::vector<BaselineAgent*> agents);

  // Stops every mapper of `bunch`, collects everywhere, resumes.
  void Collect(NodeId coordinator, BunchId bunch);

  const StopTheWorldStats& stats() const { return stats_; }

 private:
  Cluster* cluster_;
  std::vector<BaselineAgent*> agents_;
  uint64_t next_round_ = 1;
  StopTheWorldStats stats_;
};

}  // namespace bmx

#endif  // SRC_BASELINES_STOP_THE_WORLD_H_
