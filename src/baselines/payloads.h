// Message payloads of the baseline collectors (paper §9 comparators).
//
// These collectors exist to measure what the BMX design avoids: the
// strong-consistency copier (after Le Sergent & Berthomieu) acquires tokens
// and pushes address updates eagerly; the stop-the-world collector
// synchronizes every replica; the reference-counting collector (after Bevan)
// uses non-idempotent increment/decrement messages.

#ifndef SRC_BASELINES_PAYLOADS_H_
#define SRC_BASELINES_PAYLOADS_H_

#include <vector>

#include "src/common/types.h"
#include "src/dsm/piggyback.h"
#include "src/net/message.h"

namespace bmx {

// Eager new-location broadcast; applications wait while these are applied.
struct StrongUpdatePayload : public Payload {
  uint64_t round = 0;
  std::vector<AddressUpdate> updates;
  MsgKind kind() const override { return MsgKind::kStrongUpdate; }
  MsgCategory category() const override { return MsgCategory::kGcForeground; }
  size_t WireSize() const override { return 8 + updates.size() * 28; }
};

struct StrongUpdateAckPayload : public Payload {
  uint64_t round = 0;
  MsgKind kind() const override { return MsgKind::kStrongUpdateAck; }
  MsgCategory category() const override { return MsgCategory::kGcForeground; }
  size_t WireSize() const override { return 8; }
};

// Stop-the-world barrier protocol.
struct StwStopPayload : public Payload {
  uint64_t round = 0;
  BunchId bunch = kInvalidBunch;
  MsgKind kind() const override { return MsgKind::kStwStop; }
  MsgCategory category() const override { return MsgCategory::kGcForeground; }
  size_t WireSize() const override { return 12; }
};

// "Stopped and collected" acknowledgment back to the coordinator.
struct StwDonePayload : public Payload {
  uint64_t round = 0;
  uint64_t objects_reclaimed = 0;
  MsgKind kind() const override { return MsgKind::kStwRootsReply; }
  MsgCategory category() const override { return MsgCategory::kGcForeground; }
  size_t WireSize() const override { return 16; }
};

struct StwResumePayload : public Payload {
  uint64_t round = 0;
  MsgKind kind() const override { return MsgKind::kStwResume; }
  MsgCategory category() const override { return MsgCategory::kGcForeground; }
  size_t WireSize() const override { return 8; }
};

// Reference-counting control messages.  Deliberately *not* idempotent — and
// marked unreliable, so fault injection can demonstrate why the paper prefers
// resendable full tables (§6.1).
struct RcIncrementPayload : public Payload {
  Gaddr target_addr = kNullAddr;
  MsgKind kind() const override { return MsgKind::kRcIncrement; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8; }
  bool reliable() const override { return false; }
};

struct RcDecrementPayload : public Payload {
  Gaddr target_addr = kNullAddr;
  MsgKind kind() const override { return MsgKind::kRcDecrement; }
  MsgCategory category() const override { return MsgCategory::kGcBackground; }
  size_t WireSize() const override { return 8; }
  bool reliable() const override { return false; }
};

}  // namespace bmx

#endif  // SRC_BASELINES_PAYLOADS_H_
