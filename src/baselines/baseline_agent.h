// Per-node message handler for the baseline collectors' message kinds.  One
// agent per node, installed as the node's extra handler.

#ifndef SRC_BASELINES_BASELINE_AGENT_H_
#define SRC_BASELINES_BASELINE_AGENT_H_

#include <cstdint>
#include <map>

#include "src/baselines/payloads.h"
#include "src/net/network.h"
#include "src/runtime/node.h"

namespace bmx {

// Per-node reference-counting state (Bevan-style baseline): the count of
// inter-bunch references known to target each locally created object.
struct RefCountState {
  std::map<Oid, int64_t> counts;
  uint64_t reclaimed = 0;       // counts that reached zero
  uint64_t negative_counts = 0; // unsafe: a duplicate/late decrement drove a
                                // count below zero (premature reclamation)
};

class BaselineAgent : public MessageHandler {
 public:
  explicit BaselineAgent(Node* node);

  void HandleMessage(const Message& msg) override;

  // Strong-copy collector support: acks outstanding for the local round.
  uint64_t strong_acks_pending() const { return strong_acks_pending_; }
  void add_strong_acks_pending(uint64_t n) { strong_acks_pending_ += n; }

  // Stop-the-world support.
  bool stopped() const { return stopped_; }
  uint64_t stw_done_received() const { return stw_done_received_; }
  void reset_stw_done() { stw_done_received_ = 0; }

  RefCountState& rc() { return rc_; }

 private:
  void HandleStrongUpdate(const Message& msg);
  void HandleStwStop(const Message& msg);
  void HandleRcDelta(const Message& msg, int64_t delta);

  Node* node_;
  uint64_t strong_acks_pending_ = 0;
  bool stopped_ = false;
  uint64_t stw_done_received_ = 0;
  RefCountState rc_;
};

}  // namespace bmx

#endif  // SRC_BASELINES_BASELINE_AGENT_H_
