#include "src/baselines/strong_copy.h"

#include "src/common/check.h"

namespace bmx {

StrongCopyCollector::StrongCopyCollector(Cluster* cluster, std::vector<BaselineAgent*> agents)
    : cluster_(cluster), agents_(std::move(agents)) {
  BMX_CHECK(cluster_ != nullptr);
  BMX_CHECK_EQ(agents_.size(), cluster_->size());
}

void StrongCopyCollector::Collect(NodeId node_id, BunchId bunch) {
  Node& node = cluster_->node(node_id);
  stats_.collections++;

  std::vector<Gaddr> live = node.gc().LiveObjects(bunch);
  std::vector<AddressUpdate> moves;

  SegmentId to_space = kInvalidSegment;
  auto allocate = [&](Oid oid, uint32_t size_slots) -> Gaddr {
    if (to_space != kInvalidSegment) {
      Gaddr addr = node.store().Find(to_space)->Allocate(oid, size_slots);
      if (addr != kNullAddr) {
        return addr;
      }
    }
    to_space = cluster_->directory().AllocateSegment(bunch, node_id);
    Gaddr addr = node.store().GetOrCreate(to_space, bunch).Allocate(oid, size_slots);
    BMX_CHECK_NE(addr, kNullAddr);
    return addr;
  };

  for (Gaddr addr : live) {
    // Strong consistency: every live object is copied under the write token,
    // wherever its owner is — read copies everywhere get invalidated and
    // ownership migrates to the collecting node.
    BMX_CHECK(node.dsm().AcquireWrite(addr, /*for_gc=*/true))
        << "strong-copy collector failed to acquire " << addr;
    stats_.tokens_acquired++;
    Gaddr current = node.dsm().ResolveAddr(addr);
    ObjectHeader* header = node.store().HeaderOf(current);
    Oid oid = header->oid;
    Gaddr new_addr = allocate(oid, header->size_slots);
    node.store().CopyObjectBytes(current, new_addr);
    header->flags |= kObjFlagForwarded;
    header->forward = new_addr;
    node.dsm().RecordLocalMove(oid, current, new_addr, bunch);
    moves.push_back(AddressUpdate{oid, bunch, current, new_addr});
    stats_.objects_copied++;
    node.dsm().Release(new_addr);
  }

  // Local reference fix-up, same as any copying collector.
  for (SegmentId seg : node.store().SegmentsOfBunch(bunch)) {
    SegmentImage* image = node.store().Find(seg);
    image->ForEachObject([&](Gaddr addr, ObjectHeader& header) {
      if (header.forwarded()) {
        return;
      }
      for (size_t i = 0; i < header.size_slots; ++i) {
        if (!node.store().SlotIsRef(addr, i)) {
          continue;
        }
        Gaddr value = node.store().ReadSlot(addr, i);
        if (value != kNullAddr) {
          node.store().WriteSlot(addr, i, node.dsm().ResolveAddr(value));
        }
      }
    });
  }

  // Eager propagation: dedicated, synchronous update messages to every other
  // replica — precisely the "high communication overhead" §4.4 avoids.
  uint64_t round = next_round_++;
  stats_.update_rounds++;
  for (NodeId other : cluster_->directory().MappersOf(bunch)) {
    if (other == node_id) {
      continue;
    }
    auto update = std::make_shared<StrongUpdatePayload>();
    update->round = round;
    update->updates = moves;
    cluster_->network().Send(node_id, other, std::move(update));
    agents_[node_id]->add_strong_acks_pending(1);
    stats_.update_messages++;
  }
  cluster_->Pump();
  BMX_CHECK_EQ(agents_[node_id]->strong_acks_pending(), 0u);
}

}  // namespace bmx
