#include "src/baselines/stop_the_world.h"

#include "src/common/check.h"

namespace bmx {

StopTheWorldCollector::StopTheWorldCollector(Cluster* cluster,
                                             std::vector<BaselineAgent*> agents)
    : cluster_(cluster), agents_(std::move(agents)) {
  BMX_CHECK(cluster_ != nullptr);
  BMX_CHECK_EQ(agents_.size(), cluster_->size());
}

void StopTheWorldCollector::Collect(NodeId coordinator, BunchId bunch) {
  stats_.collections++;
  uint64_t round = next_round_++;
  BaselineAgent* agent = agents_[coordinator];
  agent->reset_stw_done();

  std::vector<NodeId> others;
  for (NodeId node : cluster_->directory().MappersOf(bunch)) {
    if (node != coordinator) {
      others.push_back(node);
    }
  }

  // Phase 1: stop the world.  Every mapper halts its mutators and collects.
  for (NodeId node : others) {
    auto stop = std::make_shared<StwStopPayload>();
    stop->round = round;
    stop->bunch = bunch;
    cluster_->network().Send(coordinator, node, std::move(stop));
    stats_.barrier_messages++;
    stats_.nodes_stopped++;
  }
  // The coordinator collects its own replica while stopped.
  cluster_->node(coordinator).gc().CollectBunch(bunch);
  stats_.nodes_stopped++;

  // Phase 2: barrier — wait for every node's done message.
  cluster_->Pump();
  BMX_CHECK_EQ(agent->stw_done_received(), others.size());
  stats_.barrier_messages += others.size();

  // Phase 3: resume.
  for (NodeId node : others) {
    auto resume = std::make_shared<StwResumePayload>();
    resume->round = round;
    cluster_->network().Send(coordinator, node, std::move(resume));
    stats_.barrier_messages++;
  }
  cluster_->Pump();
}

}  // namespace bmx
